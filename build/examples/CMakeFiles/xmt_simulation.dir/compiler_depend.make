# Empty compiler generated dependencies file for xmt_simulation.
# This may be replaced when dependencies are built.
