file(REMOVE_RECURSE
  "CMakeFiles/xmt_simulation.dir/xmt_simulation.cpp.o"
  "CMakeFiles/xmt_simulation.dir/xmt_simulation.cpp.o.d"
  "xmt_simulation"
  "xmt_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmt_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
