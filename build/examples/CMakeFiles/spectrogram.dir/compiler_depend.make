# Empty compiler generated dependencies file for spectrogram.
# This may be replaced when dependencies are built.
