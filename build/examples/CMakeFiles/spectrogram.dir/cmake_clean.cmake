file(REMOVE_RECURSE
  "CMakeFiles/spectrogram.dir/spectrogram.cpp.o"
  "CMakeFiles/spectrogram.dir/spectrogram.cpp.o.d"
  "spectrogram"
  "spectrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
