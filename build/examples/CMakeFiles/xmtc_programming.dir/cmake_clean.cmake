file(REMOVE_RECURSE
  "CMakeFiles/xmtc_programming.dir/xmtc_programming.cpp.o"
  "CMakeFiles/xmtc_programming.dir/xmtc_programming.cpp.o.d"
  "xmtc_programming"
  "xmtc_programming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmtc_programming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
