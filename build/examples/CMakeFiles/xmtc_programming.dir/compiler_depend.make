# Empty compiler generated dependencies file for xmtc_programming.
# This may be replaced when dependencies are built.
