
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsim/config.cpp" "src/xsim/CMakeFiles/xsim.dir/config.cpp.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/config.cpp.o.d"
  "/root/repo/src/xsim/fft_on_machine.cpp" "src/xsim/CMakeFiles/xsim.dir/fft_on_machine.cpp.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/fft_on_machine.cpp.o.d"
  "/root/repo/src/xsim/fft_traffic.cpp" "src/xsim/CMakeFiles/xsim.dir/fft_traffic.cpp.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/fft_traffic.cpp.o.d"
  "/root/repo/src/xsim/machine.cpp" "src/xsim/CMakeFiles/xsim.dir/machine.cpp.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/machine.cpp.o.d"
  "/root/repo/src/xsim/perf_model.cpp" "src/xsim/CMakeFiles/xsim.dir/perf_model.cpp.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/perf_model.cpp.o.d"
  "/root/repo/src/xsim/scaled_config.cpp" "src/xsim/CMakeFiles/xsim.dir/scaled_config.cpp.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/scaled_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xutil/CMakeFiles/xutil.dir/DependInfo.cmake"
  "/root/repo/build/src/xfft/CMakeFiles/xfft.dir/DependInfo.cmake"
  "/root/repo/build/src/xnoc/CMakeFiles/xnoc.dir/DependInfo.cmake"
  "/root/repo/build/src/xphys/CMakeFiles/xphys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
