file(REMOVE_RECURSE
  "CMakeFiles/xsim.dir/config.cpp.o"
  "CMakeFiles/xsim.dir/config.cpp.o.d"
  "CMakeFiles/xsim.dir/fft_on_machine.cpp.o"
  "CMakeFiles/xsim.dir/fft_on_machine.cpp.o.d"
  "CMakeFiles/xsim.dir/fft_traffic.cpp.o"
  "CMakeFiles/xsim.dir/fft_traffic.cpp.o.d"
  "CMakeFiles/xsim.dir/machine.cpp.o"
  "CMakeFiles/xsim.dir/machine.cpp.o.d"
  "CMakeFiles/xsim.dir/perf_model.cpp.o"
  "CMakeFiles/xsim.dir/perf_model.cpp.o.d"
  "CMakeFiles/xsim.dir/scaled_config.cpp.o"
  "CMakeFiles/xsim.dir/scaled_config.cpp.o.d"
  "libxsim.a"
  "libxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
