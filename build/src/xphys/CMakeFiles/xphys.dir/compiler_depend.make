# Empty compiler generated dependencies file for xphys.
# This may be replaced when dependencies are built.
