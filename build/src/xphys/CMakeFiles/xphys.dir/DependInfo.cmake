
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xphys/area.cpp" "src/xphys/CMakeFiles/xphys.dir/area.cpp.o" "gcc" "src/xphys/CMakeFiles/xphys.dir/area.cpp.o.d"
  "/root/repo/src/xphys/cooling.cpp" "src/xphys/CMakeFiles/xphys.dir/cooling.cpp.o" "gcc" "src/xphys/CMakeFiles/xphys.dir/cooling.cpp.o.d"
  "/root/repo/src/xphys/dram.cpp" "src/xphys/CMakeFiles/xphys.dir/dram.cpp.o" "gcc" "src/xphys/CMakeFiles/xphys.dir/dram.cpp.o.d"
  "/root/repo/src/xphys/energy.cpp" "src/xphys/CMakeFiles/xphys.dir/energy.cpp.o" "gcc" "src/xphys/CMakeFiles/xphys.dir/energy.cpp.o.d"
  "/root/repo/src/xphys/photonics.cpp" "src/xphys/CMakeFiles/xphys.dir/photonics.cpp.o" "gcc" "src/xphys/CMakeFiles/xphys.dir/photonics.cpp.o.d"
  "/root/repo/src/xphys/pins.cpp" "src/xphys/CMakeFiles/xphys.dir/pins.cpp.o" "gcc" "src/xphys/CMakeFiles/xphys.dir/pins.cpp.o.d"
  "/root/repo/src/xphys/tech.cpp" "src/xphys/CMakeFiles/xphys.dir/tech.cpp.o" "gcc" "src/xphys/CMakeFiles/xphys.dir/tech.cpp.o.d"
  "/root/repo/src/xphys/tsv.cpp" "src/xphys/CMakeFiles/xphys.dir/tsv.cpp.o" "gcc" "src/xphys/CMakeFiles/xphys.dir/tsv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xutil/CMakeFiles/xutil.dir/DependInfo.cmake"
  "/root/repo/build/src/xnoc/CMakeFiles/xnoc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
