file(REMOVE_RECURSE
  "CMakeFiles/xphys.dir/area.cpp.o"
  "CMakeFiles/xphys.dir/area.cpp.o.d"
  "CMakeFiles/xphys.dir/cooling.cpp.o"
  "CMakeFiles/xphys.dir/cooling.cpp.o.d"
  "CMakeFiles/xphys.dir/dram.cpp.o"
  "CMakeFiles/xphys.dir/dram.cpp.o.d"
  "CMakeFiles/xphys.dir/energy.cpp.o"
  "CMakeFiles/xphys.dir/energy.cpp.o.d"
  "CMakeFiles/xphys.dir/photonics.cpp.o"
  "CMakeFiles/xphys.dir/photonics.cpp.o.d"
  "CMakeFiles/xphys.dir/pins.cpp.o"
  "CMakeFiles/xphys.dir/pins.cpp.o.d"
  "CMakeFiles/xphys.dir/tech.cpp.o"
  "CMakeFiles/xphys.dir/tech.cpp.o.d"
  "CMakeFiles/xphys.dir/tsv.cpp.o"
  "CMakeFiles/xphys.dir/tsv.cpp.o.d"
  "libxphys.a"
  "libxphys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xphys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
