file(REMOVE_RECURSE
  "libxphys.a"
)
