# Empty compiler generated dependencies file for xmtc.
# This may be replaced when dependencies are built.
