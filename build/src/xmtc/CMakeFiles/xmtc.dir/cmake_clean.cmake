file(REMOVE_RECURSE
  "CMakeFiles/xmtc.dir/fft_xmtc.cpp.o"
  "CMakeFiles/xmtc.dir/fft_xmtc.cpp.o.d"
  "CMakeFiles/xmtc.dir/runtime.cpp.o"
  "CMakeFiles/xmtc.dir/runtime.cpp.o.d"
  "libxmtc.a"
  "libxmtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
