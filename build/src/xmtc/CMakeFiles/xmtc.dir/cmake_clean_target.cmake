file(REMOVE_RECURSE
  "libxmtc.a"
)
