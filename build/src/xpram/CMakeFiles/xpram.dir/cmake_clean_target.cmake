file(REMOVE_RECURSE
  "libxpram.a"
)
