# Empty dependencies file for xpram.
# This may be replaced when dependencies are built.
