file(REMOVE_RECURSE
  "CMakeFiles/xpram.dir/algorithms.cpp.o"
  "CMakeFiles/xpram.dir/algorithms.cpp.o.d"
  "libxpram.a"
  "libxpram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
