file(REMOVE_RECURSE
  "libxroof.a"
)
