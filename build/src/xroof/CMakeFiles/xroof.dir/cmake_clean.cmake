file(REMOVE_RECURSE
  "CMakeFiles/xroof.dir/roofline.cpp.o"
  "CMakeFiles/xroof.dir/roofline.cpp.o.d"
  "libxroof.a"
  "libxroof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xroof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
