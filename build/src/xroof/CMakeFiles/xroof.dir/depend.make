# Empty dependencies file for xroof.
# This may be replaced when dependencies are built.
