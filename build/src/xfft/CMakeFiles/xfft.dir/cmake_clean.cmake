file(REMOVE_RECURSE
  "CMakeFiles/xfft.dir/bluestein.cpp.o"
  "CMakeFiles/xfft.dir/bluestein.cpp.o.d"
  "CMakeFiles/xfft.dir/convolution.cpp.o"
  "CMakeFiles/xfft.dir/convolution.cpp.o.d"
  "CMakeFiles/xfft.dir/dct.cpp.o"
  "CMakeFiles/xfft.dir/dct.cpp.o.d"
  "CMakeFiles/xfft.dir/dft_reference.cpp.o"
  "CMakeFiles/xfft.dir/dft_reference.cpp.o.d"
  "CMakeFiles/xfft.dir/engines.cpp.o"
  "CMakeFiles/xfft.dir/engines.cpp.o.d"
  "CMakeFiles/xfft.dir/fftnd.cpp.o"
  "CMakeFiles/xfft.dir/fftnd.cpp.o.d"
  "CMakeFiles/xfft.dir/fixed_point.cpp.o"
  "CMakeFiles/xfft.dir/fixed_point.cpp.o.d"
  "CMakeFiles/xfft.dir/permute.cpp.o"
  "CMakeFiles/xfft.dir/permute.cpp.o.d"
  "CMakeFiles/xfft.dir/plan1d.cpp.o"
  "CMakeFiles/xfft.dir/plan1d.cpp.o.d"
  "CMakeFiles/xfft.dir/plan_cache.cpp.o"
  "CMakeFiles/xfft.dir/plan_cache.cpp.o.d"
  "CMakeFiles/xfft.dir/real.cpp.o"
  "CMakeFiles/xfft.dir/real.cpp.o.d"
  "CMakeFiles/xfft.dir/real_nd.cpp.o"
  "CMakeFiles/xfft.dir/real_nd.cpp.o.d"
  "CMakeFiles/xfft.dir/signal.cpp.o"
  "CMakeFiles/xfft.dir/signal.cpp.o.d"
  "CMakeFiles/xfft.dir/twiddle.cpp.o"
  "CMakeFiles/xfft.dir/twiddle.cpp.o.d"
  "CMakeFiles/xfft.dir/xmt_kernel.cpp.o"
  "CMakeFiles/xfft.dir/xmt_kernel.cpp.o.d"
  "libxfft.a"
  "libxfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
