# Empty dependencies file for xfft.
# This may be replaced when dependencies are built.
