
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xfft/bluestein.cpp" "src/xfft/CMakeFiles/xfft.dir/bluestein.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/bluestein.cpp.o.d"
  "/root/repo/src/xfft/convolution.cpp" "src/xfft/CMakeFiles/xfft.dir/convolution.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/convolution.cpp.o.d"
  "/root/repo/src/xfft/dct.cpp" "src/xfft/CMakeFiles/xfft.dir/dct.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/dct.cpp.o.d"
  "/root/repo/src/xfft/dft_reference.cpp" "src/xfft/CMakeFiles/xfft.dir/dft_reference.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/dft_reference.cpp.o.d"
  "/root/repo/src/xfft/engines.cpp" "src/xfft/CMakeFiles/xfft.dir/engines.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/engines.cpp.o.d"
  "/root/repo/src/xfft/fftnd.cpp" "src/xfft/CMakeFiles/xfft.dir/fftnd.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/fftnd.cpp.o.d"
  "/root/repo/src/xfft/fixed_point.cpp" "src/xfft/CMakeFiles/xfft.dir/fixed_point.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/fixed_point.cpp.o.d"
  "/root/repo/src/xfft/permute.cpp" "src/xfft/CMakeFiles/xfft.dir/permute.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/permute.cpp.o.d"
  "/root/repo/src/xfft/plan1d.cpp" "src/xfft/CMakeFiles/xfft.dir/plan1d.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/plan1d.cpp.o.d"
  "/root/repo/src/xfft/plan_cache.cpp" "src/xfft/CMakeFiles/xfft.dir/plan_cache.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/plan_cache.cpp.o.d"
  "/root/repo/src/xfft/real.cpp" "src/xfft/CMakeFiles/xfft.dir/real.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/real.cpp.o.d"
  "/root/repo/src/xfft/real_nd.cpp" "src/xfft/CMakeFiles/xfft.dir/real_nd.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/real_nd.cpp.o.d"
  "/root/repo/src/xfft/signal.cpp" "src/xfft/CMakeFiles/xfft.dir/signal.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/signal.cpp.o.d"
  "/root/repo/src/xfft/twiddle.cpp" "src/xfft/CMakeFiles/xfft.dir/twiddle.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/twiddle.cpp.o.d"
  "/root/repo/src/xfft/xmt_kernel.cpp" "src/xfft/CMakeFiles/xfft.dir/xmt_kernel.cpp.o" "gcc" "src/xfft/CMakeFiles/xfft.dir/xmt_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xutil/CMakeFiles/xutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
