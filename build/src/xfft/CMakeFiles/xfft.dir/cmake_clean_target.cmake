file(REMOVE_RECURSE
  "libxfft.a"
)
