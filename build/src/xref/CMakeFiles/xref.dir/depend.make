# Empty dependencies file for xref.
# This may be replaced when dependencies are built.
