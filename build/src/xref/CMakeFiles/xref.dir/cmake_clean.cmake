file(REMOVE_RECURSE
  "CMakeFiles/xref.dir/edison.cpp.o"
  "CMakeFiles/xref.dir/edison.cpp.o.d"
  "CMakeFiles/xref.dir/gpu.cpp.o"
  "CMakeFiles/xref.dir/gpu.cpp.o.d"
  "CMakeFiles/xref.dir/past_speedups.cpp.o"
  "CMakeFiles/xref.dir/past_speedups.cpp.o.d"
  "CMakeFiles/xref.dir/xeon.cpp.o"
  "CMakeFiles/xref.dir/xeon.cpp.o.d"
  "libxref.a"
  "libxref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
