file(REMOVE_RECURSE
  "libxref.a"
)
