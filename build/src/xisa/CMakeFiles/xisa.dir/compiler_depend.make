# Empty compiler generated dependencies file for xisa.
# This may be replaced when dependencies are built.
