file(REMOVE_RECURSE
  "libxisa.a"
)
