file(REMOVE_RECURSE
  "CMakeFiles/xisa.dir/assembler.cpp.o"
  "CMakeFiles/xisa.dir/assembler.cpp.o.d"
  "CMakeFiles/xisa.dir/interpreter.cpp.o"
  "CMakeFiles/xisa.dir/interpreter.cpp.o.d"
  "CMakeFiles/xisa.dir/trace_capture.cpp.o"
  "CMakeFiles/xisa.dir/trace_capture.cpp.o.d"
  "libxisa.a"
  "libxisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
