# Empty compiler generated dependencies file for xnoc.
# This may be replaced when dependencies are built.
