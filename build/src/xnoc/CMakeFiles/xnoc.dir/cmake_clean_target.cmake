file(REMOVE_RECURSE
  "libxnoc.a"
)
