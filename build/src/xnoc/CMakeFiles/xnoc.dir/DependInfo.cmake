
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xnoc/contention.cpp" "src/xnoc/CMakeFiles/xnoc.dir/contention.cpp.o" "gcc" "src/xnoc/CMakeFiles/xnoc.dir/contention.cpp.o.d"
  "/root/repo/src/xnoc/latency.cpp" "src/xnoc/CMakeFiles/xnoc.dir/latency.cpp.o" "gcc" "src/xnoc/CMakeFiles/xnoc.dir/latency.cpp.o.d"
  "/root/repo/src/xnoc/queue_sim.cpp" "src/xnoc/CMakeFiles/xnoc.dir/queue_sim.cpp.o" "gcc" "src/xnoc/CMakeFiles/xnoc.dir/queue_sim.cpp.o.d"
  "/root/repo/src/xnoc/topology.cpp" "src/xnoc/CMakeFiles/xnoc.dir/topology.cpp.o" "gcc" "src/xnoc/CMakeFiles/xnoc.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xutil/CMakeFiles/xutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
