file(REMOVE_RECURSE
  "CMakeFiles/xnoc.dir/contention.cpp.o"
  "CMakeFiles/xnoc.dir/contention.cpp.o.d"
  "CMakeFiles/xnoc.dir/latency.cpp.o"
  "CMakeFiles/xnoc.dir/latency.cpp.o.d"
  "CMakeFiles/xnoc.dir/queue_sim.cpp.o"
  "CMakeFiles/xnoc.dir/queue_sim.cpp.o.d"
  "CMakeFiles/xnoc.dir/topology.cpp.o"
  "CMakeFiles/xnoc.dir/topology.cpp.o.d"
  "libxnoc.a"
  "libxnoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
