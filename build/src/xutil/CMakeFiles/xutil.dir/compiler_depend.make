# Empty compiler generated dependencies file for xutil.
# This may be replaced when dependencies are built.
