file(REMOVE_RECURSE
  "CMakeFiles/xutil.dir/csv.cpp.o"
  "CMakeFiles/xutil.dir/csv.cpp.o.d"
  "CMakeFiles/xutil.dir/flags.cpp.o"
  "CMakeFiles/xutil.dir/flags.cpp.o.d"
  "CMakeFiles/xutil.dir/rng.cpp.o"
  "CMakeFiles/xutil.dir/rng.cpp.o.d"
  "CMakeFiles/xutil.dir/stats.cpp.o"
  "CMakeFiles/xutil.dir/stats.cpp.o.d"
  "CMakeFiles/xutil.dir/string_util.cpp.o"
  "CMakeFiles/xutil.dir/string_util.cpp.o.d"
  "CMakeFiles/xutil.dir/table.cpp.o"
  "CMakeFiles/xutil.dir/table.cpp.o.d"
  "CMakeFiles/xutil.dir/units.cpp.o"
  "CMakeFiles/xutil.dir/units.cpp.o.d"
  "libxutil.a"
  "libxutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
