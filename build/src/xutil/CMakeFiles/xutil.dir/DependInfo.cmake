
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xutil/csv.cpp" "src/xutil/CMakeFiles/xutil.dir/csv.cpp.o" "gcc" "src/xutil/CMakeFiles/xutil.dir/csv.cpp.o.d"
  "/root/repo/src/xutil/flags.cpp" "src/xutil/CMakeFiles/xutil.dir/flags.cpp.o" "gcc" "src/xutil/CMakeFiles/xutil.dir/flags.cpp.o.d"
  "/root/repo/src/xutil/rng.cpp" "src/xutil/CMakeFiles/xutil.dir/rng.cpp.o" "gcc" "src/xutil/CMakeFiles/xutil.dir/rng.cpp.o.d"
  "/root/repo/src/xutil/stats.cpp" "src/xutil/CMakeFiles/xutil.dir/stats.cpp.o" "gcc" "src/xutil/CMakeFiles/xutil.dir/stats.cpp.o.d"
  "/root/repo/src/xutil/string_util.cpp" "src/xutil/CMakeFiles/xutil.dir/string_util.cpp.o" "gcc" "src/xutil/CMakeFiles/xutil.dir/string_util.cpp.o.d"
  "/root/repo/src/xutil/table.cpp" "src/xutil/CMakeFiles/xutil.dir/table.cpp.o" "gcc" "src/xutil/CMakeFiles/xutil.dir/table.cpp.o.d"
  "/root/repo/src/xutil/units.cpp" "src/xutil/CMakeFiles/xutil.dir/units.cpp.o" "gcc" "src/xutil/CMakeFiles/xutil.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
