file(REMOVE_RECURSE
  "libxutil.a"
)
