# Empty compiler generated dependencies file for xmtfft_tests.
# This may be replaced when dependencies are built.
