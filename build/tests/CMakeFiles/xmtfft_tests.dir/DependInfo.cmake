
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fft/test_bluestein.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_bluestein.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_bluestein.cpp.o.d"
  "/root/repo/tests/fft/test_dct.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_dct.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_dct.cpp.o.d"
  "/root/repo/tests/fft/test_engines.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_engines.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_engines.cpp.o.d"
  "/root/repo/tests/fft/test_fftnd.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_fftnd.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_fftnd.cpp.o.d"
  "/root/repo/tests/fft/test_fixed_point.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_fixed_point.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_fixed_point.cpp.o.d"
  "/root/repo/tests/fft/test_plan1d.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_plan1d.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_plan1d.cpp.o.d"
  "/root/repo/tests/fft/test_plan_cache_fuzz.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_plan_cache_fuzz.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_plan_cache_fuzz.cpp.o.d"
  "/root/repo/tests/fft/test_real_conv_signal.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_real_conv_signal.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_real_conv_signal.cpp.o.d"
  "/root/repo/tests/fft/test_real_nd.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_real_nd.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_real_nd.cpp.o.d"
  "/root/repo/tests/fft/test_twiddle_permute.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_twiddle_permute.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_twiddle_permute.cpp.o.d"
  "/root/repo/tests/fft/test_xmt_kernel.cpp" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_xmt_kernel.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/fft/test_xmt_kernel.cpp.o.d"
  "/root/repo/tests/isa/test_trace_capture.cpp" "tests/CMakeFiles/xmtfft_tests.dir/isa/test_trace_capture.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/isa/test_trace_capture.cpp.o.d"
  "/root/repo/tests/isa/test_xisa.cpp" "tests/CMakeFiles/xmtfft_tests.dir/isa/test_xisa.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/isa/test_xisa.cpp.o.d"
  "/root/repo/tests/noc/test_latency_energy.cpp" "tests/CMakeFiles/xmtfft_tests.dir/noc/test_latency_energy.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/noc/test_latency_energy.cpp.o.d"
  "/root/repo/tests/noc/test_noc.cpp" "tests/CMakeFiles/xmtfft_tests.dir/noc/test_noc.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/noc/test_noc.cpp.o.d"
  "/root/repo/tests/phys/test_phys.cpp" "tests/CMakeFiles/xmtfft_tests.dir/phys/test_phys.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/phys/test_phys.cpp.o.d"
  "/root/repo/tests/pram/test_pram.cpp" "tests/CMakeFiles/xmtfft_tests.dir/pram/test_pram.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/pram/test_pram.cpp.o.d"
  "/root/repo/tests/ref/test_ref.cpp" "tests/CMakeFiles/xmtfft_tests.dir/ref/test_ref.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/ref/test_ref.cpp.o.d"
  "/root/repo/tests/roof/test_roofline.cpp" "tests/CMakeFiles/xmtfft_tests.dir/roof/test_roofline.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/roof/test_roofline.cpp.o.d"
  "/root/repo/tests/sim/test_config.cpp" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_config.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_config.cpp.o.d"
  "/root/repo/tests/sim/test_fft_on_machine.cpp" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_fft_on_machine.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_fft_on_machine.cpp.o.d"
  "/root/repo/tests/sim/test_machine.cpp" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_machine.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_machine.cpp.o.d"
  "/root/repo/tests/sim/test_perf_model.cpp" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_perf_model.cpp.o.d"
  "/root/repo/tests/sim/test_scaled_config.cpp" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_scaled_config.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/sim/test_scaled_config.cpp.o.d"
  "/root/repo/tests/util/test_flags.cpp" "tests/CMakeFiles/xmtfft_tests.dir/util/test_flags.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/util/test_flags.cpp.o.d"
  "/root/repo/tests/util/test_xutil.cpp" "tests/CMakeFiles/xmtfft_tests.dir/util/test_xutil.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/util/test_xutil.cpp.o.d"
  "/root/repo/tests/xmtc/test_xmtc.cpp" "tests/CMakeFiles/xmtfft_tests.dir/xmtc/test_xmtc.cpp.o" "gcc" "tests/CMakeFiles/xmtfft_tests.dir/xmtc/test_xmtc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xfft/CMakeFiles/xfft.dir/DependInfo.cmake"
  "/root/repo/build/src/xutil/CMakeFiles/xutil.dir/DependInfo.cmake"
  "/root/repo/build/src/xnoc/CMakeFiles/xnoc.dir/DependInfo.cmake"
  "/root/repo/build/src/xphys/CMakeFiles/xphys.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/xsim.dir/DependInfo.cmake"
  "/root/repo/build/src/xroof/CMakeFiles/xroof.dir/DependInfo.cmake"
  "/root/repo/build/src/xref/CMakeFiles/xref.dir/DependInfo.cmake"
  "/root/repo/build/src/xmtc/CMakeFiles/xmtc.dir/DependInfo.cmake"
  "/root/repo/build/src/xisa/CMakeFiles/xisa.dir/DependInfo.cmake"
  "/root/repo/build/src/xpram/CMakeFiles/xpram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
